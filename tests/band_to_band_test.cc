// Tests for the generalised (band-to-band) chase and multi-step reduction.

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "bc/band_to_band.h"
#include "common/rng.h"
#include "eig/eig.h"
#include "la/blas.h"
#include "la/generate.h"

namespace tdg {
namespace {

class ReduceBandTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(ReduceBandTest, ProducesTargetBandwidthPreservingSpectrum) {
  const auto [n, b, d] = GetParam();
  Rng rng(600 + n * 7 + b + d);
  const Matrix a0 = random_symmetric_band(n, b, rng);
  const index_t kd = std::min<index_t>(2 * b - d, n - 1);

  SymBandMatrix band = extract_band(a0.view(), b, kd);
  bc::ChaseLog log;
  bc::reduce_band(band, b, d, &log);

  EXPECT_LT(off_band_max(band, d), 1e-11 * n) << "bandwidth not reduced to d";

  // Spectrum preserved: compare against the direct full chase of the
  // original band matrix.
  SymBandMatrix ref = extract_band(a0.view(), b, std::min<index_t>(2 * b, n - 1));
  bc::chase_packed(ref, b, nullptr);
  std::vector<double> dr, er;
  bc::extract_tridiag(ref, dr, er);
  eig::steqr(dr, er, nullptr);

  // Continue to tridiagonal (fresh storage sized for the d -> 1 chase).
  SymBandMatrix cont =
      extract_band(band.to_dense().view(), d, std::min<index_t>(2 * d, n - 1));
  bc::reduce_band(cont, d, 1, nullptr);
  std::vector<double> dg, eg;
  bc::extract_tridiag(cont, dg, eg);
  eig::steqr(dg, eg, nullptr);

  for (index_t i = 0; i < n; ++i) {
    EXPECT_NEAR(dg[static_cast<size_t>(i)], dr[static_cast<size_t>(i)],
                1e-10 * n)
        << i;
  }

  // Reconstruction through the logged reflectors: A0 = Q B Q^T.
  Matrix bmat = band.to_dense();
  Matrix qb = bmat;
  bc::apply_q2_left(log, qb.view());
  Matrix qbq = transposed(qb.view());
  bc::apply_q2_left(log, qbq.view());
  EXPECT_LT(max_abs_diff(qbq.view(), a0.view()), 1e-10 * n);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ReduceBandTest,
    ::testing::Values(std::tuple{24, 6, 2}, std::tuple{32, 8, 4},
                      std::tuple{33, 8, 3}, std::tuple{40, 12, 6},
                      std::tuple{48, 9, 2}, std::tuple{20, 5, 4},
                      std::tuple{30, 10, 9}, std::tuple{26, 7, 1}));

TEST(ReduceBand, TargetEqualBandwidthIsNoop) {
  Rng rng(1);
  const Matrix a0 = random_symmetric_band(20, 4, rng);
  SymBandMatrix band = extract_band(a0.view(), 4, 7);
  bc::reduce_band(band, 4, 4, nullptr);
  EXPECT_LT(max_abs_diff(band.to_dense().view(), a0.view()), 1e-15);
}

TEST(ReduceBand, RejectsInsufficientStorage) {
  SymBandMatrix band(20, 6);  // need 2*6-2 = 10 for b=6, d=2
  EXPECT_THROW(bc::reduce_band(band, 6, 2, nullptr), Error);
}

class MultiStepTest
    : public ::testing::TestWithParam<std::vector<index_t>> {};

TEST_P(MultiStepTest, MatchesDirectChaseSpectrum) {
  const std::vector<index_t> steps = GetParam();
  Rng rng(77);
  const index_t n = 48, b = 16;
  const Matrix a0 = random_symmetric_band(n, b, rng);

  SymBandMatrix direct = extract_band(a0.view(), b, std::min<index_t>(2 * b, n - 1));
  bc::chase_packed(direct, b, nullptr);
  std::vector<double> dd, de;
  bc::extract_tridiag(direct, dd, de);
  eig::steqr(dd, de, nullptr);

  SymBandMatrix multi = extract_band(a0.view(), b, std::min<index_t>(2 * b, n - 1));
  const auto logs = bc::multi_step_tridiag(multi, b, steps);
  EXPECT_EQ(logs.size(), steps.size() + 1);
  EXPECT_LT(off_band_max(multi, 1), 1e-11 * n);
  std::vector<double> md, me;
  bc::extract_tridiag(multi, md, me);
  eig::steqr(md, me, nullptr);

  for (index_t i = 0; i < n; ++i) {
    EXPECT_NEAR(md[static_cast<size_t>(i)], dd[static_cast<size_t>(i)],
                1e-10 * n)
        << i;
  }

  // Composite Q reconstruction: A0 = Q1 Q2 ... T ... Q2^T Q1^T; apply logs
  // in reverse order for Q * C.
  Matrix t = multi.to_dense();
  Matrix qt = t;
  for (auto it = logs.rbegin(); it != logs.rend(); ++it) {
    bc::apply_q2_left(*it, qt.view());
  }
  Matrix qtq = transposed(qt.view());
  for (auto it = logs.rbegin(); it != logs.rend(); ++it) {
    bc::apply_q2_left(*it, qtq.view());
  }
  EXPECT_LT(max_abs_diff(qtq.view(), a0.view()), 1e-10 * n);
}

INSTANTIATE_TEST_SUITE_P(Plans, MultiStepTest,
                         ::testing::Values(std::vector<index_t>{8},
                                           std::vector<index_t>{8, 4},
                                           std::vector<index_t>{12, 6, 2},
                                           std::vector<index_t>{}));

TEST(MultiStep, RejectsNonDecreasingPlan) {
  Rng rng(2);
  const Matrix a0 = random_symmetric_band(20, 6, rng);
  SymBandMatrix band = extract_band(a0.view(), 6, 11);
  EXPECT_THROW(bc::multi_step_tridiag(band, 6, {8}), Error);
  EXPECT_THROW(bc::multi_step_tridiag(band, 6, {6}), Error);
}

}  // namespace
}  // namespace tdg
