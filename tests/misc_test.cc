// Coverage for the support layer: PRNG determinism & statistics, symm_lower,
// timers, and the check machinery.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/check.h"
#include "common/rng.h"
#include "common/timer.h"
#include "la/blas.h"
#include "band/sym_band.h"
#include "la/generate.h"

namespace tdg {
namespace {

TEST(Rng, DeterministicForEqualSeeds) {
  Rng a(123), b(123), c(124);
  bool any_diff = false;
  for (int i = 0; i < 100; ++i) {
    const auto va = a.next_u64();
    EXPECT_EQ(va, b.next_u64());
    if (va != c.next_u64()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Rng, UniformRangeAndMoments) {
  Rng rng(7);
  double sum = 0.0, sum2 = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
    sum2 += u * u;
  }
  const double mean = sum / kN;
  const double var = sum2 / kN - mean * mean;
  EXPECT_NEAR(mean, 0.5, 5e-3);
  EXPECT_NEAR(var, 1.0 / 12.0, 5e-3);
}

TEST(Rng, NormalMoments) {
  Rng rng(8);
  double sum = 0.0, sum2 = 0.0, sum4 = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
    sum4 += x * x * x * x;
  }
  EXPECT_NEAR(sum / kN, 0.0, 2e-2);
  EXPECT_NEAR(sum2 / kN, 1.0, 3e-2);
  EXPECT_NEAR(sum4 / kN, 3.0, 2e-1);  // Gaussian kurtosis
}

TEST(Rng, BoundedStaysInRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.bounded(17), 17u);
  }
  EXPECT_EQ(rng.bounded(1), 0u);
}

TEST(SymmLower, MatchesGemmOnSymmetrisedMatrix) {
  Rng rng(10);
  const index_t n = 23, w = 6;
  const Matrix a = random_symmetric(n, rng);
  Matrix poisoned = a;
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < j; ++i) poisoned(i, j) = 1e9;  // must be ignored
  }
  const Matrix b = random_matrix(n, w, rng);
  Matrix c1 = random_matrix(n, w, rng);
  Matrix c2 = c1;

  la::symm_lower(1.3, poisoned.view(), b.view(), -0.4, c1.view());
  la::gemm(Trans::kNo, Trans::kNo, 1.3, a.view(), b.view(), -0.4, c2.view());
  EXPECT_LT(max_abs_diff(c1.view(), c2.view()), 1e-10);
}

TEST(SymmLower, BetaZeroIgnoresInitialContent) {
  Rng rng(11);
  const index_t n = 9, w = 3;
  const Matrix a = random_symmetric(n, rng);
  const Matrix b = random_matrix(n, w, rng);
  Matrix c1(n, w);
  fill(c1.view(), std::nan(""));
  la::symm_lower(1.0, a.view(), b.view(), 0.0, c1.view());
  for (index_t j = 0; j < w; ++j) {
    for (index_t i = 0; i < n; ++i) EXPECT_TRUE(std::isfinite(c1(i, j)));
  }
}

TEST(Timer, MonotoneNonNegative) {
  WallTimer t;
  const double a = t.seconds();
  double b = 0.0;
  // Burn a few cycles.
  volatile double x = 1.0;
  for (int i = 0; i < 100000; ++i) x = x * 1.0000001;
  b = t.seconds();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
  t.reset();
  EXPECT_LE(t.seconds(), b + 1.0);
}

TEST(Check, ThrowsWithContext) {
  try {
    TDG_CHECK(1 == 2, "custom message");
    FAIL() << "expected throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("custom message"), std::string::npos);
  }
}

TEST(Generate, BandGeneratorRespectsBandwidth) {
  Rng rng(12);
  const Matrix a = random_symmetric_band(30, 4, rng);
  EXPECT_EQ(off_band_max(a.view(), 4), 0.0);
  EXPECT_GT(off_band_max(a.view(), 3), 0.0);
  EXPECT_LT(max_abs_diff(a.view(), transposed(a.view()).view()), 1e-16);
}

}  // namespace
}  // namespace tdg
