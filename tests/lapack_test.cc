// Unit tests for the LAPACK-lite layer: Householder reflectors, compact-WY
// QR, and direct one-stage tridiagonalization.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "la/blas.h"
#include "la/generate.h"
#include "lapack/lapack.h"

namespace tdg {
namespace {

// Rebuild the dense tridiagonal matrix from d/e.
Matrix tridiag_dense(const std::vector<double>& d,
                     const std::vector<double>& e) {
  const index_t n = static_cast<index_t>(d.size());
  Matrix t(n, n);
  for (index_t i = 0; i < n; ++i) {
    t(i, i) = d[static_cast<size_t>(i)];
    if (i + 1 < n) {
      t(i + 1, i) = e[static_cast<size_t>(i)];
      t(i, i + 1) = e[static_cast<size_t>(i)];
    }
  }
  return t;
}

TEST(Larfg, AnnihilatesTail) {
  std::vector<double> x{3.0, 4.0};
  double alpha = 0.0;
  const double tau = lapack::larfg(3, alpha, x.data());
  // H [alpha0; x0] = [beta; 0] with |beta| = ||[alpha0; x0]||.
  EXPECT_NEAR(std::abs(alpha), 5.0, 1e-14);
  EXPECT_GT(tau, 0.0);
}

TEST(Larfg, ZeroTailGivesTauZero) {
  std::vector<double> x{0.0, 0.0};
  double alpha = 2.5;
  const double tau =
      lapack::larfg(3, alpha, x.data());
  EXPECT_EQ(tau, 0.0);
  EXPECT_DOUBLE_EQ(alpha, 2.5);
}

TEST(Larf, LeftApplicationIsOrthogonalReflection) {
  Rng rng(1);
  const index_t m = 10, nc = 4;
  std::vector<double> v(static_cast<size_t>(m));
  for (auto& t : v) t = rng.normal();
  double vv = la::dot(m, v.data(), v.data());
  const double tau = 2.0 / vv;

  Matrix c = random_matrix(m, nc, rng);
  const Matrix c0 = c;
  std::vector<double> work(static_cast<size_t>(nc));
  lapack::larf_left(v.data(), tau, c.view(), work.data());
  lapack::larf_left(v.data(), tau, c.view(), work.data());
  // A true reflection (tau = 2/v'v) is an involution.
  EXPECT_LT(max_abs_diff(c.view(), c0.view()), 1e-12);
}

class PanelQrTest : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(PanelQrTest, ReconstructsPanelAndQIsOrthogonal) {
  const auto [m, k] = GetParam();
  Rng rng(100 + m + k);
  Matrix a = random_matrix(m, k, rng);
  const Matrix a0 = a;

  lapack::WyFactor f = lapack::panel_qr(a.view());

  // Q = I - V T V^T explicit.
  Matrix q = Matrix::identity(m);
  lapack::apply_block_reflector_left(f.v.view(), f.t.view(), Trans::kNo,
                                     q.view());
  EXPECT_LT(orthogonality_error(q.view()), 1e-12);

  // Q * R should reconstruct the original panel.
  Matrix r(m, k);
  for (index_t j = 0; j < k; ++j)
    for (index_t i = 0; i <= j; ++i) r(i, j) = a(i, j);
  Matrix qr(m, k);
  la::gemm(Trans::kNo, Trans::kNo, 1.0, q.view(), r.view(), 0.0, qr.view());
  EXPECT_LT(max_abs_diff(qr.view(), a0.view()), 1e-10);

  // Q^T applied to the original panel must give R (zero below diagonal).
  Matrix qta = a0;
  lapack::apply_block_reflector_left(f.v.view(), f.t.view(), Trans::kTrans,
                                     qta.view());
  for (index_t j = 0; j < k; ++j)
    for (index_t i = j + 1; i < m; ++i) EXPECT_NEAR(qta(i, j), 0.0, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Shapes, PanelQrTest,
                         ::testing::Values(std::tuple{8, 8},
                                           std::tuple{16, 4},
                                           std::tuple{33, 5},
                                           std::tuple{64, 16},
                                           std::tuple{7, 1}));

TEST(BlockReflector, RightApplicationMatchesExplicitProduct) {
  Rng rng(7);
  const index_t m = 12, nc = 9, k = 3;
  Matrix panel = random_matrix(m, k, rng);
  lapack::WyFactor f = lapack::panel_qr(panel.view());

  Matrix q = Matrix::identity(m);
  lapack::apply_block_reflector_left(f.v.view(), f.t.view(), Trans::kNo,
                                     q.view());

  Matrix c = random_matrix(nc, m, rng);
  Matrix expect(nc, m);
  la::gemm(Trans::kNo, Trans::kNo, 1.0, c.view(), q.view(), 0.0,
           expect.view());
  lapack::apply_block_reflector_right(f.v.view(), f.t.view(), Trans::kNo,
                                      c.view());
  EXPECT_LT(max_abs_diff(c.view(), expect.view()), 1e-11);
}

class SytrdTest : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SytrdTest, SimilarToOriginal) {
  const auto [n, nb] = GetParam();
  Rng rng(50 + n);
  const Matrix a0 = random_symmetric(n, rng);
  Matrix a = a0;
  std::vector<double> d, e, taus;
  lapack::sytrd(a.view(), d, e, taus, nb);

  // Reconstruct: Q T Q^T must equal A0.
  Matrix t = tridiag_dense(d, e);
  Matrix qt = t;
  lapack::apply_sytrd_q_left(a.view(), taus, qt.view());  // Q*T
  Matrix qtq = transposed(qt.view());                     // (Q T)^T = T Q^T
  lapack::apply_sytrd_q_left(a.view(), taus, qtq.view()); // Q T Q^T
  EXPECT_LT(max_abs_diff(qtq.view(), a0.view()), 1e-9 * n);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SytrdTest,
                         ::testing::Values(std::tuple{1, 4},
                                           std::tuple{2, 4},
                                           std::tuple{3, 4},
                                           std::tuple{16, 4},
                                           std::tuple{33, 8},
                                           std::tuple{64, 16},
                                           std::tuple{65, 16},
                                           std::tuple{96, 32}));

TEST(Sytrd, BlockedMatchesUnblocked) {
  Rng rng(9);
  const index_t n = 48;
  const Matrix a0 = random_symmetric(n, rng);

  Matrix a1 = a0;
  std::vector<double> d1, e1, t1;
  lapack::sytd2(a1.view(), d1, e1, t1);

  Matrix a2 = a0;
  std::vector<double> d2, e2, t2;
  lapack::sytrd(a2.view(), d2, e2, t2, 8);

  // The tridiagonal forms agree entry-wise (same reflector convention).
  for (index_t i = 0; i < n; ++i)
    EXPECT_NEAR(d1[static_cast<size_t>(i)], d2[static_cast<size_t>(i)], 1e-8);
  for (index_t i = 0; i + 1 < n; ++i)
    EXPECT_NEAR(e1[static_cast<size_t>(i)], e2[static_cast<size_t>(i)], 1e-8);
}

TEST(Sytrd, PreservesTraceAndFrobeniusNorm) {
  Rng rng(10);
  const index_t n = 40;
  const Matrix a0 = random_symmetric(n, rng);
  Matrix a = a0;
  std::vector<double> d, e, taus;
  lapack::sytrd(a.view(), d, e, taus, 8);

  double tr0 = 0.0, tr1 = 0.0;
  for (index_t i = 0; i < n; ++i) {
    tr0 += a0(i, i);
    tr1 += d[static_cast<size_t>(i)];
  }
  EXPECT_NEAR(tr0, tr1, 1e-9 * n);

  // Frobenius norm is orthogonal-invariant.
  double f0 = frobenius_norm(a0.view());
  double f1 = 0.0;
  for (index_t i = 0; i < n; ++i)
    f1 += d[static_cast<size_t>(i)] * d[static_cast<size_t>(i)];
  for (index_t i = 0; i + 1 < n; ++i)
    f1 += 2.0 * e[static_cast<size_t>(i)] * e[static_cast<size_t>(i)];
  EXPECT_NEAR(std::sqrt(f1), f0, 1e-9 * n);
}

}  // namespace
}  // namespace tdg
